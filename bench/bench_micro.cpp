// Microbenchmarks (google-benchmark): LP codec throughput, code-table
// construction, the bit-level PE datapath, the LPA functional GEMM, and a
// full quantized forward pass.  These quantify the emulation costs that
// gate how large an LPQ search budget is practical.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <future>
#include <mutex>
#include <string>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/lp_codec.h"
#include "core/lp_format.h"
#include "core/packed_codes.h"
#include "core/quant_index.h"
#include "kernels/kernels.h"
#include "lpa/datapath.h"
#include "lpa/systolic.h"
#include "lpq/lpq.h"
#include "nn/zoo.h"
#include "runtime/session.h"
#include "serve/server.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace lp;

void BM_DecodeValue(benchmark::State& state) {
  const LPConfig cfg{8, 2, 5, 0.5};
  std::uint32_t code = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_value(code, cfg));
    code = (code + 37) & 0xFF;
  }
}
BENCHMARK(BM_DecodeValue);

void BM_CodeTableBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const LPConfig cfg{n, n >= 4 ? 1 : 0, std::max(1, n / 2), 0.25};
  for (auto _ : state) {
    CodeTable table(cfg);
    benchmark::DoNotOptimize(table.values().size());
  }
}
BENCHMARK(BM_CodeTableBuild)->Arg(4)->Arg(8)->Arg(12);

void BM_QuantizeTensor(benchmark::State& state) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  Rng rng(1);
  std::vector<float> data(static_cast<std::size_t>(state.range(0)));
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (auto _ : state) {
    std::vector<float> copy = data;
    benchmark::DoNotOptimize(quantize_span(copy, fmt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeTensor)->Arg(1024)->Arg(65536);

// Scalar vs. batched LP quantization on the same buffer (quantization is
// idempotent, so the work per element is identical every iteration; no
// copy noise in the ratio).  The scalar loop is the seed's per-element
// path: one virtual call plus a binary search over the double value table
// per element.
void BM_QuantizeScalarPath(benchmark::State& state) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  Rng rng(1);
  std::vector<float> data(static_cast<std::size_t>(state.range(0)));
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  const NumberFormat& nf = fmt;
  for (auto _ : state) {
    double se = 0.0;
    for (float& x : data) {
      const double q = nf.quantize(x);
      const double d = static_cast<double>(x) - q;
      se += d * d;
      x = static_cast<float>(q);
    }
    benchmark::DoNotOptimize(se);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeScalarPath)->Arg(1 << 20);

void BM_QuantizeBatchPath(benchmark::State& state) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  Rng rng(1);
  std::vector<float> data(static_cast<std::size_t>(state.range(0)));
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  const NumberFormat& nf = fmt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nf.quantize_batch(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeBatchPath)->Arg(1 << 20);

// --- thread-pool benches -------------------------------------------------
// Serial baselines force the default pool to one thread; the Pool variants
// use automatic sizing (LP_THREADS / hardware_concurrency).  The outputs
// are bit-identical between the two — only the wall clock moves.

/// ResNet-ish GEMM stack: conv-as-GEMM shapes from a CIFAR ResNet18 trunk
/// (m = Cout, k = Cin*3*3, n = Hout*Wout).
void run_resnet_gemm_stack(const std::vector<Tensor>& as,
                           const std::vector<Tensor>& bs) {
  for (std::size_t i = 0; i < as.size(); ++i) {
    benchmark::DoNotOptimize(matmul(as[i], bs[i]).numel());
  }
}

struct GemmStack {
  std::vector<Tensor> as, bs;
  GemmStack() {
    Rng rng(4);
    for (const auto& [m, k, n] :
         {std::array<std::int64_t, 3>{64, 576, 784},
          std::array<std::int64_t, 3>{128, 1152, 196},
          std::array<std::int64_t, 3>{256, 2304, 49}}) {
      Tensor a({m, k});
      Tensor b({k, n});
      for (float& v : a.data()) v = static_cast<float>(rng.gaussian(0.0, 0.1));
      for (float& v : b.data()) v = static_cast<float>(rng.gaussian());
      as.push_back(std::move(a));
      bs.push_back(std::move(b));
    }
  }
  [[nodiscard]] std::int64_t flops() const {
    std::int64_t f = 0;
    for (std::size_t i = 0; i < as.size(); ++i) {
      f += 2 * as[i].dim(0) * as[i].dim(1) * bs[i].dim(1);
    }
    return f;
  }
};

void BM_GemmSerial(benchmark::State& state) {
  const GemmStack stack;
  set_default_pool_threads(1);
  for (auto _ : state) run_resnet_gemm_stack(stack.as, stack.bs);
  state.SetItemsProcessed(state.iterations() * stack.flops());
  set_default_pool_threads(0);
}
BENCHMARK(BM_GemmSerial)->Unit(benchmark::kMillisecond);

void BM_GemmPool(benchmark::State& state) {
  const GemmStack stack;
  set_default_pool_threads(0);
  for (auto _ : state) run_resnet_gemm_stack(stack.as, stack.bs);
  state.SetItemsProcessed(state.iterations() * stack.flops());
}
BENCHMARK(BM_GemmPool)->Unit(benchmark::kMillisecond);

/// Batched LP quantization of a 1M-element tensor; Arg is the pool-size
/// override (1 = serial baseline, 0 = automatic).
void BM_QuantizeBatchPool(benchmark::State& state) {
  set_default_pool_threads(static_cast<int>(state.range(0)));
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  Rng rng(1);
  std::vector<float> data(1U << 20);
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  const NumberFormat& nf = fmt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nf.quantize_batch(data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
  set_default_pool_threads(0);
}
BENCHMARK(BM_QuantizeBatchPool)->Arg(1)->Arg(0);

/// Full LPQ search on the tiny CNN; Arg is the pool size for BOTH the
/// candidate loop (LpqParams::threads) and the nested tensor ops (default
/// pool), so Arg(1) is a genuinely serial baseline and Arg(0) is fully
/// pooled.  Candidate fitness evaluation — a quantized forward per
/// candidate — dominates, so this measures the pool-driven evaluation path
/// end to end.
void BM_LpqEvalPool(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  set_default_pool_threads(threads);
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  const nn::Model m = nn::build_tiny_cnn(o);
  Tensor calib({2, 3, 16, 16});
  Rng rng(6);
  for (float& v : calib.data()) v = static_cast<float>(rng.gaussian());
  lpq::LpqParams params;
  params.population = 8;
  params.passes = 1;
  params.cycles = 1;
  params.block_size = 4;
  params.diversity_children = 3;
  params.threads = threads;
  for (auto _ : state) {
    lpq::LpqEngine engine(m, calib, params);
    benchmark::DoNotOptimize(engine.run().best.fitness);
  }
  state.SetItemsProcessed(state.iterations() * params.population);
  set_default_pool_threads(0);
}
BENCHMARK(BM_LpqEvalPool)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// --- kernel-dispatch benches ---------------------------------------------
// Direct kernel-table calls, no thread pool: the scalar reference (naive
// row loop) against the blocked/register-tiled SIMD variants.  Outputs are
// bit-identical across tables (test_kernels pins it); only the wall clock
// moves.  The AVX2 cases skip on hosts without the feature.

/// Mid-stack ResNet conv-as-GEMM shape (m = Cout, k = Cin*3*3, n = Ho*Wo).
void run_gemm_kernel_bench(benchmark::State& state,
                           const kernels::KernelTable& kt) {
  constexpr std::int64_t m = 128, k = 1152, n = 196;
  Rng rng(4);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto& v : a) v = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (auto& v : b) v = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    kt.gemm_rows(a.data(), b.data(), nullptr, c.data(), 0, m, k, n);
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}

void BM_GemmKernelScalar(benchmark::State& state) {
  run_gemm_kernel_bench(state, kernels::scalar_kernels());
}
BENCHMARK(BM_GemmKernelScalar)->Unit(benchmark::kMillisecond);

void BM_GemmKernelAvx2(benchmark::State& state) {
  const kernels::KernelTable* kt = kernels::avx2_kernels();
  if (kt == nullptr || !kernels::cpu_supports_avx2()) {
    state.SkipWithError("AVX2 unavailable on this host");
    return;
  }
  run_gemm_kernel_bench(state, *kt);
}
BENCHMARK(BM_GemmKernelAvx2)->Unit(benchmark::kMillisecond);

void BM_GemmKernelAvx512(benchmark::State& state) {
  const kernels::KernelTable* kt = kernels::avx512_kernels();
  if (kt == nullptr || !kernels::cpu_supports_avx512()) {
    state.SkipWithError("AVX-512 unavailable on this host");
    return;
  }
  run_gemm_kernel_bench(state, *kt);
}
BENCHMARK(BM_GemmKernelAvx512)->Unit(benchmark::kMillisecond);

// --- packed-code GEMM benches ----------------------------------------------
// The LUT-decoding datapath against the float kernels on the same shapes.
// Outputs are bit-identical (tests/test_codes.cpp pins it); the packed
// operand streams 4-8x fewer weight bytes, and the acceptance bar is "no
// slowdown vs float B-packing".  Arg is the LP width n (4 = nibble-packed
// codes, 8 = byte codes, 12 = unpacked 16-bit codes).

LPConfig bench_cfg(int n) {
  return n == 4 ? LPConfig{4, 1, 2, 2.0}
         : n == 8 ? LPConfig{8, 1, 4, 3.0}
                  : LPConfig{12, 2, 5, 0.5};
}

/// Mid-stack ResNet conv-as-GEMM shape with the *weight* matrix as the
/// coded A operand — the exact layout conv2d_codes executes.  `coded` Arg
/// 0 runs the float kernel on the decoded weights: the apples-to-apples
/// baseline, since quantized weights carry structural zeros whose skip
/// branch costs both paths identically.
void run_gemm_codes_bench(benchmark::State& state,
                          const kernels::KernelTable& kt) {
  constexpr std::int64_t m = 128, k = 1152, n = 196;
  const bool coded = state.range(1) != 0;
  const LPFormat fmt(bench_cfg(static_cast<int>(state.range(0))));
  const auto lut = build_decode_table(fmt);
  Rng rng(4);
  std::vector<float> w(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto& v : w) v = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (auto& v : b) v = static_cast<float>(rng.gaussian());
  const auto packed = PackedCodes::pack(w, {m, k}, fmt, lut);
  const kernels::PackedCodesView view = packed->view();
  std::vector<float> wq(w);
  for (std::size_t i = 0; i < wq.size(); ++i) {
    wq[i] = packed->decode_at(static_cast<std::int64_t>(i));
  }
  for (auto _ : state) {
    if (coded) {
      kt.gemm_codes_rows(view, b.data(), nullptr, c.data(), 0, m, k, n);
    } else {
      kt.gemm_rows(wq.data(), b.data(), nullptr, c.data(), 0, m, k, n);
    }
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
  state.counters["weight_bytes_packed"] =
      static_cast<double>(packed->payload_bytes());
  state.counters["weight_bytes_float"] =
      static_cast<double>(packed->logical_bytes());
}

void BM_GemmCodesScalar(benchmark::State& state) {
  run_gemm_codes_bench(state, kernels::scalar_kernels());
}
BENCHMARK(BM_GemmCodesScalar)
    ->Args({8, 0})->Args({4, 1})->Args({8, 1})->Args({12, 1})
    ->ArgNames({"n", "coded"})
    ->Unit(benchmark::kMillisecond);

void BM_GemmCodesAvx2(benchmark::State& state) {
  const kernels::KernelTable* kt = kernels::avx2_kernels();
  if (kt == nullptr || !kernels::cpu_supports_avx2()) {
    state.SkipWithError("AVX2 unavailable on this host");
    return;
  }
  run_gemm_codes_bench(state, *kt);
}
BENCHMARK(BM_GemmCodesAvx2)
    ->Args({8, 0})->Args({4, 0})->Args({4, 1})->Args({8, 1})->Args({12, 1})
    ->ArgNames({"n", "coded"})
    ->Unit(benchmark::kMillisecond);

void BM_GemmCodesAvx512(benchmark::State& state) {
  const kernels::KernelTable* kt = kernels::avx512_kernels();
  if (kt == nullptr || !kernels::cpu_supports_avx512()) {
    state.SkipWithError("AVX-512 unavailable on this host");
    return;
  }
  run_gemm_codes_bench(state, *kt);
}
BENCHMARK(BM_GemmCodesAvx512)
    ->Args({8, 0})->Args({4, 0})->Args({4, 1})->Args({8, 1})->Args({12, 1})
    ->ArgNames({"n", "coded"})
    ->Unit(benchmark::kMillisecond);

/// ViT-ish linear shape ([tokens, k] x W[n, k]^T) with W as the coded B^T
/// operand — the layout matmul_nt_codes executes.  `coded` Arg 0 runs the
/// float gemm_nt kernel on the decoded weights as the in-process baseline.
void run_gemm_codes_nt_bench(benchmark::State& state,
                             const kernels::KernelTable& kt) {
  constexpr std::int64_t m = 196, k = 512, n = 256;
  const bool coded = state.range(1) != 0;
  const LPFormat fmt(bench_cfg(static_cast<int>(state.range(0))));
  const auto lut = build_decode_table(fmt);
  Rng rng(9);
  std::vector<float> w(static_cast<std::size_t>(n * k));
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto& v : w) v = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (auto& v : a) v = static_cast<float>(rng.gaussian());
  const auto packed = PackedCodes::pack(w, {n, k}, fmt, lut);
  const kernels::PackedCodesView view = packed->view();
  std::vector<float> wq(w);
  for (std::size_t i = 0; i < wq.size(); ++i) {
    wq[i] = packed->decode_at(static_cast<std::int64_t>(i));
  }
  for (auto _ : state) {
    if (coded) {
      kt.gemm_codes_nt_rows(a.data(), view, nullptr, c.data(), nullptr, 0, m,
                            k, n);
    } else {
      kt.gemm_nt_rows(a.data(), wq.data(), nullptr, c.data(), 0, m, k, n);
    }
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
  state.counters["weight_bytes_packed"] =
      static_cast<double>(packed->payload_bytes());
  state.counters["weight_bytes_float"] =
      static_cast<double>(packed->logical_bytes());
}

void BM_GemmCodesNtScalar(benchmark::State& state) {
  run_gemm_codes_nt_bench(state, kernels::scalar_kernels());
}
BENCHMARK(BM_GemmCodesNtScalar)
    ->Args({8, 0})->Args({4, 1})->Args({8, 1})->Args({12, 1})
    ->ArgNames({"n", "coded"})
    ->Unit(benchmark::kMillisecond);

void BM_GemmCodesNtAvx2(benchmark::State& state) {
  const kernels::KernelTable* kt = kernels::avx2_kernels();
  if (kt == nullptr || !kernels::cpu_supports_avx2()) {
    state.SkipWithError("AVX2 unavailable on this host");
    return;
  }
  run_gemm_codes_nt_bench(state, *kt);
}
BENCHMARK(BM_GemmCodesNtAvx2)
    ->Args({8, 0})->Args({4, 1})->Args({8, 1})->Args({12, 1})
    ->ArgNames({"n", "coded"})
    ->Unit(benchmark::kMillisecond);

void BM_GemmCodesNtAvx512(benchmark::State& state) {
  const kernels::KernelTable* kt = kernels::avx512_kernels();
  if (kt == nullptr || !kernels::cpu_supports_avx512()) {
    state.SkipWithError("AVX-512 unavailable on this host");
    return;
  }
  run_gemm_codes_nt_bench(state, *kt);
}
BENCHMARK(BM_GemmCodesNtAvx512)
    ->Args({8, 0})->Args({4, 1})->Args({8, 1})->Args({12, 1})
    ->ArgNames({"n", "coded"})
    ->Unit(benchmark::kMillisecond);

/// Quantize-kernel A/B on one 1M-element buffer (quantization is
/// idempotent, so work per iteration is stable after the first pass).
void run_quantize_kernel_bench(benchmark::State& state,
                               const kernels::KernelTable& kt) {
  const LPFormat fmt(LPConfig{8, 1, 4, 3.0});
  const QuantIndex index(fmt.all_values());
  const kernels::QuantIndexView view = index.view();
  Rng rng(1);
  std::vector<float> data(1U << 20);
  for (auto& x : data) x = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kt.quantize_chunk(view, data.data(), data.size()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}

void BM_QuantizeKernelScalar(benchmark::State& state) {
  run_quantize_kernel_bench(state, kernels::scalar_kernels());
}
BENCHMARK(BM_QuantizeKernelScalar);

void BM_QuantizeKernelAvx2(benchmark::State& state) {
  const kernels::KernelTable* kt = kernels::avx2_kernels();
  if (kt == nullptr || !kernels::cpu_supports_avx2()) {
    state.SkipWithError("AVX2 unavailable on this host");
    return;
  }
  run_quantize_kernel_bench(state, *kt);
}
BENCHMARK(BM_QuantizeKernelAvx2);

void BM_QuantizeKernelAvx512(benchmark::State& state) {
  const kernels::KernelTable* kt = kernels::avx512_kernels();
  if (kt == nullptr || !kernels::cpu_supports_avx512()) {
    state.SkipWithError("AVX-512 unavailable on this host");
    return;
  }
  run_quantize_kernel_bench(state, *kt);
}
BENCHMARK(BM_QuantizeKernelAvx512);

// --- runtime weight-code-cache benches ------------------------------------
// One GA generation's fitness evaluations over a population whose members
// share most per-layer genes with a common parent (exactly what LPQ's Step
// 2/3 children look like).  Arg(0) = the pre-runtime path: every candidate
// rebuilds both format tables and re-quantizes every layer.  Arg(1) = the
// runtime path: InferenceSession::prepare_all quantizes only changed
// layers, then evaluates the cached snapshots.  Outputs are bit-identical
// (tests/test_runtime.cpp pins it); the acceptance target is >= 1.5x.

struct GenerationFixture {
  nn::Model model;
  Tensor calib;
  std::vector<lpq::Candidate> population;
  lpq::FpReference ref;
  lpq::FitnessOptions opts;

  GenerationFixture()
      : model([] {
          // Weight-heavy, compute-light: double-width ResNet18 at a small
          // input, so per-candidate cost is dominated by weight
          // quantization — the work the cache elides — rather than the
          // calibration forward (which both paths pay identically).
          nn::ZooOptions o;
          o.input_size = 16;
          o.classes = 16;
          o.width_mult = 2.0;
          return nn::build_resnet18(o);
        }()),
        calib({2, 3, 16, 16}) {
    Rng rng(12);
    for (float& v : calib.data()) v = static_cast<float>(rng.gaussian());
    ref = lpq::compute_fp_reference(model, calib);
    // Parent + 7 children, each child regenerating one 4-layer block.
    lpq::SearchSpace space;
    const auto centers = lpq::sf_centers(model);
    lpq::Candidate parent;
    for (std::size_t s = 0; s < model.num_slots(); ++s) {
      parent.layers.push_back(space.sample(rng, centers[s]));
    }
    population.push_back(parent);
    for (int c = 1; c < 8; ++c) {
      lpq::Candidate child = parent;
      const std::size_t block = (static_cast<std::size_t>(c - 1) * 4) %
                                model.num_slots();
      for (std::size_t l = block;
           l < std::min(block + 4, model.num_slots()); ++l) {
        child.layers[l] = space.sample(rng, centers[l]);
      }
      population.push_back(std::move(child));
    }
  }
};

void BM_LpqGenerationEval(benchmark::State& state) {
  const GenerationFixture fx;
  const bool cached = state.range(0) != 0;
  runtime::CacheStats last_stats;
  for (auto _ : state) {
    double sum = 0.0;
    if (cached) {
      // Fresh session per iteration: measures one generation cold — every
      // layer of the parent plus each child's changed block quantizes once,
      // all shared genes hit the cache.
      runtime::InferenceSession session(fx.model);
      std::vector<std::vector<LPConfig>> w;
      std::vector<std::vector<LPConfig>> a;
      for (const auto& cand : fx.population) {
        w.push_back(cand.layers);
        a.push_back(lpq::act_configs(fx.model, cand, fx.opts.act_sf,
                                     fx.ref.act_scale_centers));
      }
      const auto prepared = session.prepare_all(w, a);
      for (std::size_t c = 0; c < fx.population.size(); ++c) {
        sum += lpq::evaluate_fitness_prepared(prepared[c], fx.model,
                                              fx.population[c], fx.calib,
                                              fx.ref, fx.opts);
      }
      last_stats = session.stats();
    } else {
      for (const auto& cand : fx.population) {
        sum += lpq::evaluate_fitness(fx.model, cand, fx.calib, fx.ref,
                                     fx.opts);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.population.size()));
  if (cached) {
    // Cache-compression counters for the JSON artifact: physical packed
    // bytes vs the float32-equivalent bytes the pre-packed cache stored.
    state.counters["cache_bytes_physical"] =
        static_cast<double>(last_stats.bytes);
    state.counters["cache_bytes_logical"] =
        static_cast<double>(last_stats.logical_bytes);
    state.counters["cache_compression_x"] =
        last_stats.bytes == 0
            ? 0.0
            : static_cast<double>(last_stats.logical_bytes) /
                  static_cast<double>(last_stats.bytes);
  }
}
BENCHMARK(BM_LpqGenerationEval)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"cached"})
    ->Unit(benchmark::kMillisecond);

/// Eviction-pressure variant: one persistent session alternates between
/// two gene-sets (a search revisiting formats) under a deliberately small
/// byte budget, expressed as a divisor of one float32 weight set.  The
/// flip means a generation's entries are *not* re-touched the next tick,
/// so the cache must retain the union working set across generations or
/// pay re-quantization misses on every revisit.  budget_div=1 gives the
/// budget the float-era cache needed for a single candidate — both
/// populations (~4.7 weight sets logical) only stay resident because
/// packed codes compress them ~4-5x, so steady state runs hit-dominated
/// with zero evictions (the float path lost these hits); budget_div=4
/// shrinks the budget below even the packed working set, and the
/// eviction/miss counters show the churn.
void BM_LpqGenerationEvalSmallBudget(benchmark::State& state) {
  const GenerationFixture fx;
  const std::size_t float_set_bytes =
      static_cast<std::size_t>(fx.model.weight_param_count()) * sizeof(float);
  runtime::SessionOptions sopts;
  sopts.weight_cache_bytes =
      float_set_bytes / static_cast<std::size_t>(state.range(0));
  runtime::InferenceSession session(fx.model, sopts);
  std::vector<std::vector<std::vector<LPConfig>>> w(2);
  std::vector<std::vector<std::vector<LPConfig>>> a(2);
  for (int v = 0; v < 2; ++v) {
    for (const auto& cand : fx.population) {
      lpq::Candidate shifted = cand;
      for (auto& cfg : shifted.layers) cfg.sf += static_cast<double>(v);
      w[static_cast<std::size_t>(v)].push_back(shifted.layers);
      a[static_cast<std::size_t>(v)].push_back(
          lpq::act_configs(fx.model, shifted, fx.opts.act_sf,
                           fx.ref.act_scale_centers));
    }
  }
  std::size_t flip = 0;
  for (auto _ : state) {
    const std::size_t v = flip++ & 1;
    double sum = 0.0;
    const auto prepared = session.prepare_all(w[v], a[v]);
    for (std::size_t c = 0; c < fx.population.size(); ++c) {
      sum += lpq::evaluate_fitness_prepared(prepared[c], fx.model,
                                            fx.population[c], fx.calib,
                                            fx.ref, fx.opts);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fx.population.size()));
  const runtime::CacheStats st = session.stats();
  state.counters["cache_hits"] = static_cast<double>(st.hits);
  state.counters["cache_misses"] = static_cast<double>(st.misses);
  state.counters["cache_evictions"] = static_cast<double>(st.evictions);
  state.counters["cache_bytes_physical"] = static_cast<double>(st.bytes);
  state.counters["cache_bytes_logical"] =
      static_cast<double>(st.logical_bytes);
  state.counters["cache_hit_rate"] =
      st.hits + st.misses == 0
          ? 0.0
          : static_cast<double>(st.hits) /
                static_cast<double>(st.hits + st.misses);
}
BENCHMARK(BM_LpqGenerationEvalSmallBudget)
    ->Arg(1)
    ->Arg(4)
    ->ArgNames({"budget_div"})
    ->Unit(benchmark::kMillisecond);

void BM_PeMacDatapath(benchmark::State& state) {
  const LPConfig wcfg{4, 1, 2, 2.0};
  const LPConfig acfg{8, 2, 2, 0.0};
  const lpa::DecoderConfig wdc = lpa::DecoderConfig::from(wcfg);
  const lpa::DecoderConfig adc = lpa::DecoderConfig::from(acfg);
  const CodeTable wtab(wcfg), atab(acfg);
  const auto w = lpa::decode_lane(wtab.quantize_code(0.31), wdc);
  const auto a = lpa::decode_lane(atab.quantize_code(-1.7), adc);
  lpa::PartialSum psum;
  for (auto _ : state) {
    lpa::accumulate(psum, lpa::multiply(w, a));
    benchmark::DoNotOptimize(psum.mantissa);
  }
}
BENCHMARK(BM_PeMacDatapath);

void BM_LpaGemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(2);
  Tensor w({n, n}), x({n, n});
  for (float& v : w.data()) v = static_cast<float>(rng.gaussian(0.0, 0.1));
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  const LPConfig wcfg{4, 1, 2, 3.0};
  const LPConfig acfg{8, 2, 2, 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(lpa::lpa_gemm(w, x, wcfg, acfg));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_LpaGemm)->Arg(16)->Arg(32);

void BM_QuantizedForward(benchmark::State& state) {
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  const nn::Model m = nn::build_tiny_cnn(o);
  nn::QuantSpec spec;
  spec.resize(m.num_slots());
  const LPFormat fmt(LPConfig{4, 1, 2, 4.0});
  for (auto& f : spec.weight_fmt) f = &fmt;
  Tensor x({4, 3, 16, 16});
  Rng rng(3);
  for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.forward_quantized(x, spec).logits.numel());
  }
}
BENCHMARK(BM_QuantizedForward);

// --- coded-activation forward benches --------------------------------------
// Full serving forwards through an InferenceSession with inter-layer
// activations as packed codes vs the float round-trip.  Outputs are
// bit-identical (tests/test_act_codes.cpp pins it); the JSON artifact
// carries the activation bytes each representation moved per forward.
// Acceptance: act_bytes_moved_coded shows >= 2x reduction against the
// float bytes it replaced at 8-bit activation formats (the counters make
// the ratio auditable per run).

struct ForwardActsFixture {
  nn::Model model;
  Tensor input;
  std::vector<LPConfig> w, a;

  explicit ForwardActsFixture(std::int64_t batch)
      : model([] {
          // ResNet-ish trunk at a serving-sized input: enough conv layers
          // that inter-layer activation traffic, not weight streaming,
          // dominates bytes moved.
          nn::ZooOptions o;
          o.input_size = 32;
          o.classes = 16;
          return nn::build_resnet18(o);
        }()),
        input({batch, 3, 32, 32}) {
    Rng rng(21);
    for (float& v : input.data()) v = static_cast<float>(rng.gaussian());
    const auto centers = lpq::sf_centers(model);
    for (std::size_t s = 0; s < model.num_slots(); ++s) {
      w.push_back(LPConfig{4, 1, 2, centers[s]});  // 4-bit weights
    }
    for (const LPConfig& c : w) a.push_back(activation_config(c, 0.5));
  }
};

void run_forward_acts_bench(benchmark::State& state, bool coded,
                            bool fuse = false) {
  const ForwardActsFixture fx(state.range(0));
  runtime::SessionOptions sopts;
  sopts.coded_activations = coded;
  sopts.fuse = fuse;
  runtime::InferenceSession session(fx.model, sopts);
  session.set_formats(fx.w, fx.a);
  nn::ActTraffic traffic;
  for (auto _ : state) {
    traffic = {};
    benchmark::DoNotOptimize(
        session.run(fx.input, false, &traffic).logits.numel());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  // Per-forward activation bytes by representation.  The float baseline
  // moves everything as float32; the coded run moves most edges as 8-bit
  // codes (float_bytes > 0 covers the per-edge fallbacks: capture taps or
  // formats without enumerable tables).
  state.counters["act_bytes_moved_float"] =
      static_cast<double>(traffic.float_bytes);
  state.counters["act_bytes_moved_coded"] =
      static_cast<double>(traffic.coded_bytes);
  state.counters["act_bytes_moved_total"] =
      static_cast<double>(traffic.float_bytes + traffic.coded_bytes);
}

void BM_ForwardFloatActs(benchmark::State& state) {
  run_forward_acts_bench(state, /*coded=*/false);
}
BENCHMARK(BM_ForwardFloatActs)
    ->Arg(1)->Arg(8)
    ->ArgNames({"batch"})
    ->Unit(benchmark::kMillisecond);

void BM_ForwardCodedActs(benchmark::State& state) {
  // fuse off: the coded-activation flow as of the pre-fusion datapath —
  // float-input coded-weight layers finish their float block, then encode
  // in a second pass.  The unfused A/B baseline for BM_ForwardFused.
  run_forward_acts_bench(state, /*coded=*/true, /*fuse=*/false);
}
BENCHMARK(BM_ForwardCodedActs)
    ->Arg(1)->Arg(8)
    ->ArgNames({"batch"})
    ->Unit(benchmark::kMillisecond);

void BM_ForwardFused(benchmark::State& state) {
  // fuse on (the session default): decode→GEMM→bias→act→encode runs as
  // one kernel pass on float-in coded-weight layers, so the float
  // intermediate never round-trips through memory.  Bit-identical logits
  // to BM_ForwardCodedActs (tests/test_act_codes.cpp pins it); the delta
  // against it is the fusion win the CI JSON tracks.
  run_forward_acts_bench(state, /*coded=*/true, /*fuse=*/true);
}
BENCHMARK(BM_ForwardFused)
    ->Arg(1)->Arg(8)
    ->ArgNames({"batch"})
    ->Unit(benchmark::kMillisecond);

// --- serving traffic simulator ---------------------------------------------
// Closed-loop clients hammer a serve::Server over a published snapshot;
// per-request submit-to-response latencies become p50/p99 counters, and
// SetItemsProcessed turns completed requests into items_per_second.
// max_batch=1 is the batch-per-request baseline; max_batch=8 lets the
// queue coalesce concurrent clients into fused forwards — the dynamic
// batching win the serving layer exists for.  CI publishes this as
// bench_serve.json next to the bench_micro artifact.

void BM_ServeTraffic(benchmark::State& state) {
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 8;
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  const nn::Model m = nn::build_tiny_cnn(o);
  runtime::InferenceSession session(m);
  std::vector<LPConfig> w, a;
  const auto centers = lpq::sf_centers(m);
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    w.push_back(LPConfig{4, 1, 2, centers[s]});
  }
  for (const LPConfig& c : w) a.push_back(activation_config(c, 0.5));
  session.set_formats(w, a);

  serve::ServerOptions sopts;
  sopts.workers = 2;
  sopts.max_batch = static_cast<std::size_t>(state.range(0));
  sopts.batch_deadline = std::chrono::microseconds{200};
  serve::Server server(session.publisher(), sopts);

  std::vector<Tensor> inputs;
  for (int c = 0; c < kClients; ++c) {
    Tensor x({1, 3, 16, 16});
    Rng rng(static_cast<std::uint64_t>(77 + c));
    for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
    inputs.push_back(std::move(x));
  }

  std::mutex lat_mu;
  std::vector<double> lat_us;
  for (auto _ : state) {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<double> mine;
        mine.reserve(kRequestsPerClient);
        for (int r = 0; r < kRequestsPerClient; ++r) {
          const auto t0 = std::chrono::steady_clock::now();
          auto resp = server.submit(inputs[static_cast<std::size_t>(c)]).get();
          benchmark::DoNotOptimize(resp.logits.numel());
          mine.push_back(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
        }
        const std::lock_guard<std::mutex> lk(lat_mu);
        lat_us.insert(lat_us.end(), mine.begin(), mine.end());
      });
    }
    for (std::thread& t : clients) t.join();
  }
  server.shutdown();

  state.SetItemsProcessed(state.iterations() * kClients * kRequestsPerClient);
  std::sort(lat_us.begin(), lat_us.end());
  auto percentile = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(lat_us.size() - 1));
    return lat_us[idx];
  };
  if (!lat_us.empty()) {
    state.counters["p50_us"] = percentile(0.50);
    state.counters["p99_us"] = percentile(0.99);
  }
  const serve::ServerStats st = server.stats();
  // Mean fused-batch size actually achieved — the coalescing evidence
  // (1.0 at max_batch=1 by construction).
  state.counters["mean_batch_rows"] =
      st.batches > 0 ? static_cast<double>(st.batched_rows) /
                           static_cast<double>(st.batches)
                     : 0.0;
  state.counters["max_batch_rows"] = static_cast<double>(st.max_batch_rows);
}
BENCHMARK(BM_ServeTraffic)
    ->Arg(1)->Arg(8)
    ->ArgNames({"max_batch"})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// --- overload scenario ------------------------------------------------------
// Open-loop bursts past capacity: clients submit whole bursts back-to-back
// without waiting for responses, so offered load exceeds what one worker
// can serve and a backlog must form.  admission=0 is the unbounded-queue
// baseline — everything is admitted and the tail request waits for the
// entire backlog to drain, so p99 grows with the burst.  admission=1 turns
// on the overload contract (depth bound + estimated-wait watermark +
// per-request deadlines): excess load is shed as kOverloaded / expired as
// kDeadlineExceeded in O(1), and the p99 of the requests actually served
// stays bounded by the short queue.  The shed / expired counters in the
// JSON are the admission-control evidence; degradation is off on both
// sides so the A/B isolates the queueing policy.

void BM_ServeOverload(benchmark::State& state) {
  const bool admission = state.range(0) != 0;
  constexpr int kClients = 4;
  constexpr int kBurst = 16;  // per client per iteration, no pacing
  nn::ZooOptions o;
  o.input_size = 16;
  o.classes = 8;
  const nn::Model m = nn::build_tiny_cnn(o);
  runtime::InferenceSession session(m);
  std::vector<LPConfig> w, a;
  const auto centers = lpq::sf_centers(m);
  for (std::size_t s = 0; s < m.num_slots(); ++s) {
    w.push_back(LPConfig{4, 1, 2, centers[s]});
  }
  for (const LPConfig& c : w) a.push_back(activation_config(c, 0.5));
  session.set_formats(w, a);

  serve::ServerOptions sopts;
  sopts.workers = 1;
  sopts.max_batch = 4;
  sopts.batch_deadline = std::chrono::microseconds{100};
  sopts.degrade = false;
  if (admission) {
    sopts.queue_depth = 8;
    sopts.admission_wait = std::chrono::microseconds{2000};
  } else {
    sopts.queue_depth = 0;  // unbounded
    sopts.admission_wait = std::chrono::microseconds{0};
  }
  serve::Server server(session.publisher(), sopts);
  const auto deadline = admission ? std::chrono::microseconds{5000}
                                  : std::chrono::microseconds{0};

  std::vector<Tensor> inputs;
  for (int c = 0; c < kClients; ++c) {
    Tensor x({1, 3, 16, 16});
    Rng rng(static_cast<std::uint64_t>(177 + c));
    for (float& v : x.data()) v = static_cast<float>(rng.gaussian());
    inputs.push_back(std::move(x));
  }

  std::mutex lat_mu;
  std::vector<double> ok_us;
  for (auto _ : state) {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<std::future<serve::Response>> pending;
        std::vector<std::chrono::steady_clock::time_point> t0;
        pending.reserve(kBurst);
        t0.reserve(kBurst);
        for (int r = 0; r < kBurst; ++r) {
          t0.push_back(std::chrono::steady_clock::now());
          pending.push_back(
              server.submit(inputs[static_cast<std::size_t>(c)], deadline));
        }
        std::vector<double> mine;
        for (int r = 0; r < kBurst; ++r) {
          const serve::Response resp = pending[static_cast<std::size_t>(r)].get();
          if (resp.ok()) {
            mine.push_back(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() -
                               t0[static_cast<std::size_t>(r)])
                               .count());
          }
          benchmark::DoNotOptimize(resp.status);
        }
        const std::lock_guard<std::mutex> lk(lat_mu);
        ok_us.insert(ok_us.end(), mine.begin(), mine.end());
      });
    }
    for (std::thread& t : clients) t.join();
  }
  server.shutdown();

  const double offered =
      static_cast<double>(state.iterations()) * kClients * kBurst;
  state.SetItemsProcessed(static_cast<std::int64_t>(ok_us.size()));
  std::sort(ok_us.begin(), ok_us.end());
  if (!ok_us.empty()) {
    const auto pct = [&](double p) {
      return ok_us[static_cast<std::size_t>(
          p * static_cast<double>(ok_us.size() - 1))];
    };
    state.counters["p50_us"] = pct(0.50);
    state.counters["p99_us"] = pct(0.99);
  }
  const serve::ServerHealth h = server.health();
  state.counters["offered"] = offered;
  state.counters["served_ok"] = static_cast<double>(ok_us.size());
  state.counters["shed"] = static_cast<double>(h.shed);
  state.counters["expired"] = static_cast<double>(h.expired);
  state.counters["queue_wait_p99_us"] = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(h.wait_p99)
          .count());
}
BENCHMARK(BM_ServeOverload)
    ->Arg(0)->Arg(1)
    ->ArgNames({"admission"})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // Record the kernel/pool configuration in the benchmark context so the
  // CI JSON artifact states what it measured (the numbers are meaningless
  // without knowing which kernel table and pool width produced them).
  benchmark::AddCustomContext("lp_kernel", lp::kernels::dispatch().name);
  benchmark::AddCustomContext(
      "lp_threads",
      std::to_string(lp::default_pool().thread_count()));
  const char* threads_env = std::getenv("LP_THREADS");
  benchmark::AddCustomContext("lp_threads_env",
                              threads_env != nullptr ? threads_env : "");
  benchmark::AddCustomContext(
      "avx2_supported", lp::kernels::cpu_supports_avx2() ? "yes" : "no");
  benchmark::AddCustomContext(
      "avx512_supported", lp::kernels::cpu_supports_avx512() ? "yes" : "no");
  benchmark::AddCustomContext(
      "lp_approx", lp::kernels::approx_mode() == lp::kernels::ApproxMode::kPlam
                       ? "plam"
                       : "exact");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
