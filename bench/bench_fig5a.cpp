// Fig. 5(a) — LPQ convergence under different objectives: MSE,
// KL-divergence, global contrastive, and the paper's global-local
// contrastive loss.  For each objective the search runs with identical
// budgets and seeds; the quantized model's top-1 is evaluated at every
// population update.
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace lp;
  using namespace lp::bench;

  print_banner(std::cout, "Fig. 5(a) — LPQ convergence vs loss function");

  WorkbenchOptions wopts;
  wopts.target_fp_accuracy = 0.7108;  // ResNet18 baseline
  Workbench wb = make_workbench("resnet18", wopts);
  std::cout << "FP top-1: " << Table::num(100 * wb.fp_accuracy, 2) << "%\n";

  struct SeriesSpec {
    const char* name;
    lpq::FitnessKind kind;
  };
  const SeriesSpec specs[] = {
      {"MSE", lpq::FitnessKind::kMse},
      {"KL-Divergence", lpq::FitnessKind::kKlDivergence},
      {"Global Contrastive", lpq::FitnessKind::kGlobalContrastive},
      {"Global-Local (ours)", lpq::FitnessKind::kGlobalLocalContrastive},
  };

  std::vector<std::vector<double>> curves;
  std::vector<std::vector<double>> bits;
  for (const auto& sp : specs) {
    auto params = bench_lpq_params(false, false);
    params.passes = 2;
    params.fitness.kind = sp.kind;
    params.seed = 99;
    lpq::LpqEngine engine(wb.model, wb.dataset.calibration, params);
    std::vector<double> curve;
    std::vector<double> curve_bits;
    (void)engine.run([&](const lpq::IterationStat& st,
                         const lpq::Candidate& best) {
      const auto spec = engine.make_spec(best);
      curve.push_back(evaluate_spec(wb, spec.spec));
      curve_bits.push_back(st.best_avg_weight_bits);
    });
    curves.push_back(std::move(curve));
    bits.push_back(std::move(curve_bits));
  }

  Table t({"iteration", specs[0].name, specs[1].name, specs[2].name,
           specs[3].name});
  const std::size_t iters = curves[0].size();
  for (std::size_t i = 0; i < iters; ++i) {
    t.add_row({std::to_string(i + 1), Table::num(curves[0][i], 2),
               Table::num(curves[1][i], 2), Table::num(curves[2][i], 2),
               Table::num(curves[3][i], 2)});
  }
  t.print(std::cout);

  std::cout << "\nfinal avg weight bits: ";
  for (std::size_t k = 0; k < 4; ++k) {
    std::cout << specs[k].name << "=" << Table::num(bits[k].back(), 2)
              << (k + 1 < 4 ? ", " : "\n");
  }
  std::cout <<
      "\nshape check (paper Fig. 5(a)): the global-local contrastive\n"
      "objective should end at the highest accuracy for comparable\n"
      "compression; MSE/KL plateau earlier (they overfit the calibration\n"
      "set), and global-only contrastive trails as more layers quantize.\n";
  return 0;
}
