// Fig. 6 — normalized end-to-end latency and energy of LPA vs ANT,
// BitFusion and AdaptivFloat on ResNet50 and ViT-B (normalized to LPA),
// at full-scale ImageNet GEMM dimensions and the paper's per-architecture
// precision mixes.
//
// Paper shape: LPA has the lowest latency on both models; its energy is
// close to ANT's (slightly above in the paper: native mixed-precision
// support and conversion logic cost energy) and far below AdaptivFloat's.
#include <iostream>

#include "bench/workloads.h"
#include "sim/simulator.h"
#include "util/table.h"

namespace {

using namespace lp;
using namespace lp::bench;

void run_model(const std::string& name,
               const std::vector<nn::LayerWorkload>& workloads) {
  const std::size_t slots = workload_slot_count(workloads);

  sim::PrecisionMap lpa_pm;
  lpa_pm.weight_bits = imagenet_allocation(slots, ImageNetAlloc::kLpaMixed);
  lpa_pm.act_bits.assign(slots, 8);
  for (std::size_t s = 0; s < slots; ++s) {
    lpa_pm.act_bits[s] = lpa_pm.weight_bits[s] <= 2 ? 4 : 8;
  }
  sim::PrecisionMap ant_pm;
  ant_pm.weight_bits = imagenet_allocation(slots, ImageNetAlloc::kFourEight);
  ant_pm.act_bits.assign(slots, 8);
  const sim::PrecisionMap bf_pm = ant_pm;
  const auto af_pm = sim::PrecisionMap::uniform(slots, 8, 8);

  const auto lpa_r = sim::simulate(lpa::make_lpa(), workloads, lpa_pm);
  const auto ant_r = sim::simulate(lpa::make_ant(), workloads, ant_pm);
  const auto bf_r = sim::simulate(lpa::make_bitfusion(), workloads, bf_pm);
  const auto af_r = sim::simulate(lpa::make_adaptivfloat(), workloads, af_pm);

  print_banner(std::cout, "Fig. 6 — " + name + " (normalized to LPA)");
  Table t({"Architecture", "Latency(ms)", "Latency(norm)", "Energy(mJ)",
           "Energy(norm)"});
  auto add = [&](const sim::SimResult& r) {
    t.add_row({r.accel_name, Table::num(r.time_ms, 3),
               Table::num(r.time_ms / lpa_r.time_ms, 2),
               Table::num(r.energy_mj, 3),
               Table::num(r.energy_mj / lpa_r.energy_mj, 2)});
  };
  add(lpa_r);
  add(ant_r);
  add(bf_r);
  add(af_r);
  t.print(std::cout);
}

}  // namespace

int main() {
  run_model("ResNet50 (224x224)", resnet50_imagenet_workloads());
  run_model("ViT-B/16 (224x224)", vit_b_imagenet_workloads());
  std::cout << "\nshape checks (paper Fig. 6): LPA latency lowest on both\n"
               "models; LPA energy within ~1.3x of ANT and well below\n"
               "BitFusion/AdaptivFloat.\n";
  return 0;
}
