// Shared harness for the per-table / per-figure bench binaries.
//
// Provides the workbench (model + dataset at bench scale), the LPQ runner
// presets, and *measured stand-ins* for the competing methods in
// Tables 1/2 (EMQ, HAWQ-V3, AFP, ANT, BREC-Q, Evol-Q, FQ-ViT).  Each
// stand-in reproduces the competitor's data type and bit-allocation policy
// on this repo's substrate (see DESIGN.md section 2); its row is measured,
// not copied.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "lpq/lpq.h"
#include "nn/zoo.h"

namespace lp::bench {

/// Model + dataset + baseline accuracy, built with bench-wide settings.
struct Workbench {
  nn::Model model;
  data::Dataset dataset;
  double fp_accuracy = 0.0;
  nn::ZooOptions zoo;
};

struct WorkbenchOptions {
  int input_size = 24;
  int classes = 24;
  int n_calibration = 24;
  int n_eval = 256;
  double target_fp_accuracy = 0.0;  ///< paper baseline for this model
  std::uint64_t seed = 2024;
};

[[nodiscard]] Workbench make_workbench(const std::string& model_name,
                                       const WorkbenchOptions& opts);

/// One row of Table 1 / Table 2.
struct MethodResult {
  std::string method;
  std::string wa;          ///< e.g. "4/4" or "MP4.2/MP5.5"
  double size_mb = 0.0;
  double top1 = 0.0;       ///< percent
};

/// Per-slot weight bit-widths (used to hand precision maps to the
/// simulator benches).
struct BitAllocation {
  std::vector<int> weight_bits;
  std::vector<int> act_bits;
  [[nodiscard]] double avg_weight_bits(const nn::Model& m) const;
  [[nodiscard]] double avg_act_bits() const;
};

/// Fast preset for the LPQ engine used by all benches (the paper's full
/// parameters are K=20 P=10 C=4; benches shrink them so a full table runs
/// in minutes on a CPU — see EXPERIMENTS.md).
[[nodiscard]] lpq::LpqParams bench_lpq_params(bool transformer,
                                              bool hardware_preset);

/// Run LPQ and evaluate; `out_alloc`/`out_candidate` are optional sinks.
MethodResult run_lpq(Workbench& wb, bool transformer, bool hardware_preset,
                     BitAllocation* out_alloc = nullptr,
                     lpq::Candidate* out_candidate = nullptr);

/// Uniform INT quantization (HAWQ-V3 / FQ-ViT style): W`wbits`/A`abits`.
MethodResult run_uniform_int(Workbench& wb, const std::string& name, int wbits,
                             int abits);

/// Sensitivity-allocated mixed INT (EMQ / BREC-Q style): layers are split
/// into {2,4,8}-bit groups by quantization sensitivity; `abits` fixes the
/// activation width.
MethodResult run_mixed_int(Workbench& wb, const std::string& name, int abits);

/// AdaptivFloat (AFP style): per-layer calibrated exponent bias,
/// sensitivity-mixed widths around ~5 bits, AF8 activations.
MethodResult run_adaptivfloat(Workbench& wb, const std::string& name);

/// ANT-style flint: 4-bit with 8-bit for the most sensitive quartile.
MethodResult run_flint(Workbench& wb, const std::string& name);

/// Evol-Q style: the LPQ engine restricted to the INT data type is not
/// expressible; instead uses the global-contrastive objective over LP with
/// uniform 4-bit weights / 8-bit acts, matching Evol-Q's scale-perturbation
/// search at W4/A8.
MethodResult run_evolq_style(Workbench& wb, const std::string& name);

/// Quantized top-1 (%) under an arbitrary per-slot spec.
double evaluate_spec(Workbench& wb, const nn::QuantSpec& spec);

/// Paper-style bit allocations for the hardware benches.  The paper's LPQ
/// run on real ImageNet models lands at ~2.8 average weight bits for LPA
/// (Table 4's density implies mostly MODE-A) and 4/8 for the INT/flint
/// baselines; these allocations reproduce that precision *mix* by layer
/// sensitivity so the architecture comparison can be isolated from the
/// synthetic substrate's higher precision needs (see EXPERIMENTS.md).
enum class PaperAlloc { kLpaMixed, kAnt, kIntMixed, kEightBit };
[[nodiscard]] std::vector<int> paper_allocation(const nn::Model& model,
                                                PaperAlloc kind);

/// Format a MethodResult table row.
[[nodiscard]] std::vector<std::string> to_row(const MethodResult& r);

}  // namespace lp::bench
