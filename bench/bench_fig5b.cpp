// Fig. 5(b) — per-layer quantization RMSE of competing data types on the
// ViT-B weight distributions at a matched bit width (6 bits).
//
// Following the paper's methodology, each data type gets a small per-layer
// parameter search over *its own* knobs (LPQ "with modified search
// parameters suited to each data type"): LP searches <es, rs, sf>,
// AdaptivFloat its exponent split, INT its clipping quantile, LNS its
// fraction split, posit its es, minifloat its exponent width, flint has
// only its scale.  LP should achieve the lowest mean RMSE because it is
// the only format that adapts range, shape and position simultaneously.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>

#include "core/lp_format.h"
#include "formats/adaptivfloat.h"
#include "formats/flint.h"
#include "formats/lns.h"
#include "formats/minifloat.h"
#include "formats/posit.h"
#include "formats/uniform_int.h"
#include "nn/zoo.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace lp;

constexpr int kBits = 6;

double best_lp(std::span<const float> w) {
  // sf positions the accuracy peak: sweep it from the mean magnitude up
  // toward the largest weights (RMSE is dominated by the top octaves).
  const double center = -std::log2(mean_abs(w));
  double best = 1e30;
  for (int es = 0; es <= kBits - 3; ++es) {
    for (int rs = 1; rs <= kBits - 1; ++rs) {
      for (double dsf = -4.0; dsf <= 1.0; dsf += 0.5) {
        const LPFormat fmt(LPConfig{kBits, es, rs, center + dsf});
        best = std::min(best, quantization_rmse(w, fmt));
      }
    }
  }
  return best;
}

double best_posit(std::span<const float> w) {
  // Standard posit has no scale factor; its only knob is es.
  double best = 1e30;
  for (int es = 0; es <= 3; ++es) {
    const PositFormat fmt(kBits, es);
    best = std::min(best, quantization_rmse(w, fmt));
  }
  return best;
}

double best_af(std::span<const float> w) {
  // AdaptivFloat fixes the exponent/mantissa split (3 exponent bits in the
  // AFP paper); only the exponent *bias* adapts to the tensor.  That is
  // exactly the "adapts range but not shape" limitation Fig. 5(b) probes.
  const auto fmt = AdaptivFloatFormat::calibrated(kBits, 3, w);
  return quantization_rmse(w, fmt);
}

double best_int(std::span<const float> w) {
  double best = 1e30;
  for (double q : {0.99, 0.999, 1.0}) {
    const auto fmt = UniformIntFormat::calibrated(kBits, w, q);
    best = std::min(best, quantization_rmse(w, fmt));
  }
  return best;
}

double best_lns(std::span<const float> w) {
  double best = 1e30;
  for (int fb = 0; fb <= kBits - 2; ++fb) {
    const auto fmt = LnsFormat::calibrated(kBits, fb, w);
    best = std::min(best, quantization_rmse(w, fmt));
  }
  return best;
}

double best_minifloat(std::span<const float> w) {
  // IEEE-style minifloat has no per-tensor bias: fixed range around 1.0.
  double best = 1e30;
  for (int eb = 2; eb <= kBits - 1; ++eb) {
    const MiniFloatFormat fmt(kBits, eb);
    best = std::min(best, quantization_rmse(w, fmt));
  }
  return best;
}

double best_flint(std::span<const float> w) {
  const auto fmt = FlintFormat::calibrated(kBits, w);
  return quantization_rmse(w, fmt);
}

}  // namespace

int main() {
  print_banner(std::cout, "Fig. 5(b) — quantization RMSE by format (ViT-B)");
  std::cout << "all formats at " << kBits
            << " bits, per-layer parameter search per data type\n\n";

  nn::ZooOptions zopts;
  zopts.input_size = 16;
  zopts.classes = 24;
  const nn::Model model = nn::build_vit_b(zopts);
  const auto& slots = model.slot_list();

  Table t({"layer", "LP", "Posit", "AdaptFlt", "INT", "LNS", "MiniFlt",
           "Flint"});
  std::vector<double> sums(7, 0.0);
  int rows = 0;
  for (std::size_t s = 0; s < slots.size(); s += 6) {  // sample layers
    const auto w = slots[s]->weight.data();
    const double vals[7] = {best_lp(w),  best_posit(w),     best_af(w),
                            best_int(w), best_lns(w),       best_minifloat(w),
                            best_flint(w)};
    std::vector<std::string> row{slots[s]->name};
    for (int i = 0; i < 7; ++i) {
      sums[static_cast<std::size_t>(i)] += vals[i];
      row.push_back(Table::num(vals[i], 5));
    }
    t.add_row(std::move(row));
    ++rows;
  }
  std::vector<std::string> mean_row{"mean"};
  for (double s : sums) mean_row.push_back(Table::num(s / rows, 5));
  t.add_row(std::move(mean_row));
  t.print(std::cout);

  std::size_t best = 0;
  for (std::size_t i = 1; i < sums.size(); ++i) {
    if (sums[i] < sums[best]) best = i;
  }
  std::cout << "\nshape check (paper Fig. 5(b)): LP has the lowest average "
               "RMSE across layers "
            << (best == 0 ? "[OK: LP wins]" : "[MISMATCH]") << '\n';
  return 0;
}
