#include "bench/common.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "util/table.h"
#include "formats/adaptivfloat.h"
#include "formats/flint.h"
#include "formats/uniform_int.h"
#include "util/stats.h"

namespace lp::bench {
namespace {

std::string mp_label(double bits) {
  std::ostringstream os;
  os << "MP" << std::fixed << std::setprecision(1) << bits;
  return os.str();
}

double size_mb_for(const nn::Model& model, const std::vector<int>& wbits) {
  double bits = 0.0;
  for (std::size_t s = 0; s < wbits.size(); ++s) {
    bits += static_cast<double>(model.slot_param_count(s)) * wbits[s];
  }
  return bits / 8.0 / 1e6;
}

/// Owned per-slot spec assembled from format factories.
struct OwnedSpec {
  nn::QuantSpec spec;
  std::vector<std::unique_ptr<NumberFormat>> storage;
};

using WeightFactory =
    std::function<std::unique_ptr<NumberFormat>(std::size_t slot)>;
using ActFactory =
    std::function<std::unique_ptr<NumberFormat>(std::size_t slot, int node)>;

OwnedSpec make_spec(const nn::Model& model, const WeightFactory& wf,
                    const ActFactory& af) {
  OwnedSpec out;
  out.spec.resize(model.num_slots());
  const auto slot_node = model.slot_node_map();
  for (std::size_t s = 0; s < model.num_slots(); ++s) {
    out.storage.push_back(wf(s));
    out.spec.weight_fmt[s] = out.storage.back().get();
    out.storage.push_back(af(s, slot_node[s]));
    out.spec.act_fmt[s] = out.storage.back().get();
  }
  return out;
}

/// Per-channel weight quantization (what the INT-based competitors —
/// HAWQ, BRECQ, EMQ, ANT — use in practice): quantize each output-channel
/// slice with its own calibrated format.  `chan_quant` quantizes one
/// channel slice in place.
using ChannelQuant = std::function<void(int bits, std::span<float> chan)>;

double evaluate_per_channel_weights(Workbench& wb, const std::vector<int>& widths,
                                    const ChannelQuant& chan_quant,
                                    const ActFactory& act_factory) {
  const auto& slots = wb.model.slot_list();
  std::vector<Tensor> qweights(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    Tensor copy = slots[s]->weight;
    const std::int64_t out_ch = copy.dim(0);
    const std::int64_t per = copy.numel() / out_ch;
    for (std::int64_t c = 0; c < out_ch; ++c) {
      chan_quant(widths[s],
                 std::span<float>(copy.raw() + c * per,
                                  static_cast<std::size_t>(per)));
    }
    qweights[s] = std::move(copy);
  }
  nn::QuantSpec act_spec;
  act_spec.resize(slots.size());
  std::vector<std::unique_ptr<NumberFormat>> storage;
  const auto slot_node = wb.model.slot_node_map();
  for (std::size_t s = 0; s < slots.size(); ++s) {
    storage.push_back(act_factory(s, slot_node[s]));
    act_spec.act_fmt[s] = storage.back().get();
  }
  const auto fwd = wb.model.forward_with_weights(wb.dataset.eval_inputs,
                                                 qweights, act_spec);
  return 100.0 * data::top1_accuracy(fwd.logits, wb.dataset.eval_labels);
}

/// Rank slots by INT-4 quantization sensitivity (relative RMSE).
std::vector<std::size_t> sensitivity_order(const nn::Model& model) {
  const auto& slots = model.slot_list();
  std::vector<double> sens(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const auto w = slots[s]->weight.data();
    const auto fmt = UniformIntFormat::calibrated(4, w);
    const double sd = stddev(w);
    sens[s] = quantization_rmse(w, fmt) / (sd > 0.0 ? sd : 1.0);
  }
  std::vector<std::size_t> order(slots.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return sens[a] > sens[b]; });
  return order;
}

/// {4,8} mixed allocation: most sensitive quartile 8-bit, rest 4-bit
/// (the mix EMQ/BREC-Q-style searches land on for CNNs; they do not go
/// below 4-bit weights).
std::vector<int> mixed_widths(const nn::Model& model) {
  const auto order = sensitivity_order(model);
  std::vector<int> bits(order.size(), 4);
  const std::size_t quartile = order.size() / 4;
  for (std::size_t i = 0; i < quartile; ++i) bits[order[i]] = 8;
  return bits;
}

}  // namespace

double BitAllocation::avg_weight_bits(const nn::Model& m) const {
  double bits = 0.0;
  double params = 0.0;
  for (std::size_t s = 0; s < weight_bits.size(); ++s) {
    const auto p = static_cast<double>(m.slot_param_count(s));
    bits += p * weight_bits[s];
    params += p;
  }
  return params > 0.0 ? bits / params : 0.0;
}

double BitAllocation::avg_act_bits() const {
  if (act_bits.empty()) return 0.0;
  double s = 0.0;
  for (int b : act_bits) s += b;
  return s / static_cast<double>(act_bits.size());
}

Workbench make_workbench(const std::string& model_name,
                         const WorkbenchOptions& opts) {
  nn::ZooOptions zopts;
  zopts.input_size = opts.input_size;
  zopts.classes = opts.classes;
  zopts.seed = opts.seed;
  nn::Model model = nn::build_model(model_name, zopts);

  data::DatasetOptions dopts;
  dopts.classes = opts.classes;
  dopts.n_calibration = opts.n_calibration;
  dopts.n_eval = opts.n_eval;
  dopts.target_fp_accuracy = opts.target_fp_accuracy;
  dopts.seed = opts.seed ^ 0x5eedULL;
  auto dataset = data::make_dataset(model, zopts.in_channels, opts.input_size,
                                    dopts);
  Workbench wb{std::move(model), std::move(dataset), 0.0, zopts};
  wb.fp_accuracy = data::evaluate_fp(wb.model, wb.dataset);
  return wb;
}

lpq::LpqParams bench_lpq_params(bool transformer, bool hardware_preset) {
  lpq::LpqParams p;
  p.population = 8;
  p.passes = 1;
  p.cycles = 1;
  p.block_size = 6;
  p.diversity_children = 3;
  if (transformer) p.block_mode = lpq::LpqParams::BlockMode::kByBlockId;
  p.space.power_of_two_n = hardware_preset;
  p.seed = 77;
  return p;
}

double evaluate_spec(Workbench& wb, const nn::QuantSpec& spec) {
  return 100.0 * data::evaluate_quantized(wb.model, spec, wb.dataset);
}

MethodResult run_lpq(Workbench& wb, bool transformer, bool hardware_preset,
                     BitAllocation* out_alloc, lpq::Candidate* out_candidate) {
  lpq::LpqEngine engine(wb.model, wb.dataset.calibration,
                        bench_lpq_params(transformer, hardware_preset));
  const auto result = engine.run();
  const auto spec = engine.make_spec(result.best);
  const auto stats = lpq::candidate_stats(wb.model, result.best);

  if (out_alloc != nullptr) {
    out_alloc->weight_bits.clear();
    out_alloc->act_bits.clear();
    for (const auto& cfg : result.best.layers) {
      out_alloc->weight_bits.push_back(cfg.n);
      out_alloc->act_bits.push_back(activation_config(cfg, 0.0).n);
    }
  }
  if (out_candidate != nullptr) *out_candidate = result.best;

  MethodResult r;
  r.method = "LPQ (ours)";
  r.wa = mp_label(stats.avg_weight_bits) + "/" + mp_label(stats.avg_act_bits);
  r.size_mb = stats.size_mb;
  r.top1 = evaluate_spec(wb, spec.spec);
  return r;
}

namespace {

void int_channel_quant(int bits, std::span<float> chan) {
  if (chan.empty()) return;
  const auto fmt = UniformIntFormat::calibrated(bits, chan, 0.999);
  (void)quantize_span(chan, fmt);
}

ActFactory int_act_factory(Workbench& wb, int abits,
                           std::vector<float>& act_maxes) {
  act_maxes = wb.model.measure_act_maxes(wb.dataset.calibration);
  return [abits, &act_maxes](std::size_t, int node) {
    const double mx =
        std::max(1e-6F, act_maxes[static_cast<std::size_t>(node)]);
    const int top = (1 << (abits - 1)) - 1;
    return std::make_unique<UniformIntFormat>(abits, mx / top);
  };
}

}  // namespace

MethodResult run_uniform_int(Workbench& wb, const std::string& name, int wbits,
                             int abits) {
  const std::vector<int> widths(wb.model.num_slots(), wbits);
  std::vector<float> act_maxes;
  const auto act_factory = int_act_factory(wb, abits, act_maxes);
  MethodResult r;
  r.method = name;
  r.wa = std::to_string(wbits) + "/" + std::to_string(abits);
  r.size_mb = size_mb_for(wb.model, widths);
  r.top1 = evaluate_per_channel_weights(wb, widths, int_channel_quant,
                                        act_factory);
  return r;
}

MethodResult run_mixed_int(Workbench& wb, const std::string& name, int abits) {
  const auto widths = mixed_widths(wb.model);
  std::vector<float> act_maxes;
  const auto act_factory = int_act_factory(wb, abits, act_maxes);
  BitAllocation alloc;
  alloc.weight_bits = widths;
  MethodResult r;
  r.method = name;
  r.wa = mp_label(alloc.avg_weight_bits(wb.model)) + "/" + std::to_string(abits);
  r.size_mb = size_mb_for(wb.model, widths);
  r.top1 = evaluate_per_channel_weights(wb, widths, int_channel_quant,
                                        act_factory);
  return r;
}

MethodResult run_adaptivfloat(Workbench& wb, const std::string& name) {
  // AFP: sensitivity-mixed {4,6,8}-bit AdaptivFloat weights, AF8 acts.
  const auto order = sensitivity_order(wb.model);
  std::vector<int> widths(order.size(), 5);
  const std::size_t quartile = order.size() / 4;
  for (std::size_t i = 0; i < quartile; ++i) widths[order[i]] = 8;
  for (std::size_t i = 0; i < quartile; ++i) {
    widths[order[order.size() - 1 - i]] = 4;
  }
  const auto act_maxes = wb.model.measure_act_maxes(wb.dataset.calibration);
  const auto spec = make_spec(
      wb.model,
      [&](std::size_t s) {
        const auto w = wb.model.slot_list()[s]->weight.data();
        const int eb = std::min(3, widths[s] - 2);
        return std::make_unique<AdaptivFloatFormat>(
            AdaptivFloatFormat::calibrated(widths[s], eb, w));
      },
      [&](std::size_t, int node) {
        const float mx = std::max(1e-6F, act_maxes[static_cast<std::size_t>(node)]);
        const std::vector<float> probe{mx, -mx};
        return std::make_unique<AdaptivFloatFormat>(
            AdaptivFloatFormat::calibrated(8, 4, probe));
      });
  BitAllocation alloc;
  alloc.weight_bits = widths;
  MethodResult r;
  r.method = name;
  r.wa = mp_label(alloc.avg_weight_bits(wb.model)) + "/8";
  r.size_mb = size_mb_for(wb.model, widths);
  r.top1 = evaluate_spec(wb, spec.spec);
  return r;
}

MethodResult run_flint(Workbench& wb, const std::string& name) {
  const auto order = sensitivity_order(wb.model);
  std::vector<int> widths(order.size(), 4);
  for (std::size_t i = 0; i < order.size() / 4; ++i) widths[order[i]] = 8;
  const auto act_maxes = wb.model.measure_act_maxes(wb.dataset.calibration);
  const auto flint_chan = [](int bits, std::span<float> chan) {
    if (chan.empty()) return;
    const auto fmt = FlintFormat::calibrated(bits, chan);
    (void)quantize_span(chan, fmt);
  };
  const auto act_factory = [&](std::size_t, int node) {
    const float mx = std::max(1e-6F, act_maxes[static_cast<std::size_t>(node)]);
    const std::vector<float> probe{mx, -mx};
    return std::make_unique<FlintFormat>(FlintFormat::calibrated(8, probe));
  };
  BitAllocation alloc;
  alloc.weight_bits = widths;
  MethodResult r;
  r.method = name;
  r.wa = mp_label(alloc.avg_weight_bits(wb.model)) + "/MP";
  r.size_mb = size_mb_for(wb.model, widths);
  r.top1 = evaluate_per_channel_weights(wb, widths, flint_chan, act_factory);
  return r;
}

MethodResult run_evolq_style(Workbench& wb, const std::string& name) {
  auto params = bench_lpq_params(/*transformer=*/true, /*hardware_preset=*/false);
  params.fitness.kind = lpq::FitnessKind::kGlobalContrastive;
  // Evol-Q searches scale perturbations at fixed W4/A8: pin the widths.
  params.space.n_min = 4;
  params.space.n_max = 4;
  lpq::LpqEngine engine(wb.model, wb.dataset.calibration, params);
  const auto result = engine.run();
  const auto spec = engine.make_spec(result.best);
  MethodResult r;
  r.method = name;
  r.wa = "4/8";
  r.size_mb = size_mb_for(wb.model, std::vector<int>(wb.model.num_slots(), 4));
  r.top1 = evaluate_spec(wb, spec.spec);
  return r;
}

std::vector<int> paper_allocation(const nn::Model& model, PaperAlloc kind) {
  const auto order = sensitivity_order(model);
  const std::size_t n = order.size();
  std::vector<int> bits(n, 4);
  switch (kind) {
    case PaperAlloc::kLpaMixed:
      // ~60% 2-bit, 30% 4-bit, 10% 8-bit (avg ~2.8, Table 4's implied mix).
      for (std::size_t i = 0; i < n; ++i) {
        const double rank = static_cast<double>(i) / static_cast<double>(n);
        bits[order[i]] = rank < 0.1 ? 8 : (rank < 0.4 ? 4 : 2);
      }
      break;
    case PaperAlloc::kAnt:
    case PaperAlloc::kIntMixed:
      // 4-bit native with the sensitive fifth at 8-bit.
      for (std::size_t i = 0; i < n / 5; ++i) bits[order[i]] = 8;
      break;
    case PaperAlloc::kEightBit:
      bits.assign(n, 8);
      break;
  }
  return bits;
}

std::vector<std::string> to_row(const MethodResult& r) {
  return {r.method, r.wa, Table::num(r.size_mb, 3), Table::num(r.top1, 2)};
}

}  // namespace lp::bench
