// Table 1 — PTQ accuracy on CNNs (ResNet18, ResNet50, MobileNetV2):
// baseline FP plus EMQ / HAWQ-V3 / AFP / ANT / BREC-Q stand-ins and LPQ.
//
// Competitor rows are *measured stand-ins* of each method's data type and
// bit-allocation policy on this repo's substrate (DESIGN.md section 2);
// the paper's reported numbers are printed alongside for reference.
// Absolute model sizes differ (the zoo is width-scaled); the reproduction
// targets are the accuracy ordering and the accuracy-vs-FP deltas.
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

namespace {

struct PaperRow {
  const char* method;
  const char* wa;
  double size_mb;
  double top1;
};

void run_model(const std::string& name, double paper_baseline,
               const std::vector<PaperRow>& paper_rows) {
  using namespace lp;
  using namespace lp::bench;

  print_banner(std::cout, "Table 1 — " + name);
  WorkbenchOptions wopts;
  wopts.target_fp_accuracy = paper_baseline / 100.0;
  Workbench wb = make_workbench(name, wopts);

  Table measured({"Method", "W/A", "Size(MB)", "Top-1(%)", "vs FP"});
  auto add = [&](const MethodResult& r) {
    auto row = to_row(r);
    row.push_back(Table::num(r.top1 - 100.0 * wb.fp_accuracy, 2));
    measured.add_row(std::move(row));
  };

  MethodResult base;
  base.method = "Baseline (FP32)";
  base.wa = "32/32";
  base.size_mb = static_cast<double>(wb.model.weight_param_count()) * 4 / 1e6;
  base.top1 = 100.0 * wb.fp_accuracy;
  add(base);
  add(run_mixed_int(wb, "EMQ*", /*abits=*/4));
  add(run_uniform_int(wb, "HAWQ-V3*", 4, 4));
  add(run_adaptivfloat(wb, "AFP*"));
  add(run_flint(wb, "ANT*"));
  add(run_mixed_int(wb, "BREC-Q*", /*abits=*/8));
  add(run_lpq(wb, /*transformer=*/false, /*hardware_preset=*/false));
  measured.print(std::cout);

  Table paper({"Method (paper)", "W/A", "Size(MB)", "Top-1(%)"});
  for (const auto& pr : paper_rows) {
    paper.add_row({pr.method, pr.wa, Table::num(pr.size_mb, 2),
                   Table::num(pr.top1, 2)});
  }
  std::cout << "\npaper reference (ImageNet, full-size models):\n";
  paper.print(std::cout);
}

}  // namespace

int main() {
  run_model("resnet18", 71.08,
            {{"Baseline", "32/32", 44.60, 71.08},
             {"EMQ", "MP/4", 5.50, 70.12},
             {"HAWQ-V3", "4/4", 5.81, 68.45},
             {"ANT", "MP/MP", 5.87, 70.30},
             {"BREC-Q", "MP/8", 5.10, 68.88},
             {"LPQ (ours)", "MP4.2/MP5.5", 4.10, 70.30}});
  run_model("resnet50", 77.72,
            {{"Baseline", "32/32", 97.80, 77.72},
             {"EMQ", "MP/5", 17.86, 76.70},
             {"HAWQ-V3", "MP/MP", 18.70, 75.39},
             {"AFP", "MP4.8/MP", 13.20, 76.09},
             {"ANT", "MP/MP", 14.54, 76.70},
             {"BREC-Q", "MP/8", 13.15, 76.45},
             {"LPQ (ours)", "MP5.3/MP5.9", 14.00, 76.98}});
  run_model("mobilenetv2", 72.49,
            {{"Baseline", "32/32", 13.40, 72.49},
             {"EMQ", "MP/8", 1.50, 70.75},
             {"HAWQ-V3", "MP/MP", 1.68, 70.84},
             {"AFP", "MP4.8/MP", 1.94, 70.91},
             {"ANT", "MP/MP", 1.84, 70.74},
             {"BREC-Q", "MP/8", 1.30, 68.99},
             {"LPQ (ours)", "MP4.1/MP4.98", 1.30, 71.20}});
  return 0;
}
